//! The durable, batch-optimized storage backend: write-ahead log +
//! snapshots + crash recovery.
//!
//! [`WalStore`] wraps the striped [`MemStore`] with three layers (see
//! `docs/STORAGE.md` for the full format and the recovery argument):
//!
//! 1. **Append-only WAL.** Every mutation — a coalesced batch sequence from
//!    the pipelined applier, a single cross-shard `put`, a commit marker —
//!    is appended to `wal.log` as a length-prefixed, CRC-32-guarded frame
//!    whose payload is a [`WalRecord`] in the standard [`Wire`] encoding.
//!    Appends are buffered; [`Store::commit_marker`] flushes and fsyncs, so
//!    everything up to the last commit boundary is durable.
//! 2. **B^ε-style buffer.** Applied batches park in an ordered in-memory
//!    buffer (with a key → pending-version overlay serving reads) and are
//!    flushed into the striped store in bulk once enough writes accumulate
//!    — the Sky^ε-Tree idea of buffering batch updates in front of the
//!    structure they amortize into.
//! 3. **Snapshot compaction.** When the WAL grows past a threshold (checked
//!    at commit boundaries, where the log is consistent), the store writes
//!    the full versioned state to `snapshot.bin` (tmp + atomic rename) and
//!    truncates the WAL. Generation counters stitch the two files together:
//!    recovery replays the WAL only when its generation matches the
//!    snapshot's, so a crash between the rename and the truncate cannot
//!    double-apply the log.
//!
//! [`WalStore::open`] is create-or-recover: it loads the snapshot (exact
//! per-key versions and write counters), replays every valid WAL frame,
//! cleanly truncates a torn tail, and reports what it did in
//! [`RecoveryInfo`].

use crate::batch::WriteBatch;
use crate::mem::{MemStore, StoreStats};
use crate::snapshot::Snapshot;
use crate::store::{CommitMarker, Store};
use crate::traits::{KvRead, KvWrite, Versioned};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use tb_types::wire::{Wire, WireError, WireReader, WireWriter};
use tb_types::{Key, Value};

/// File name of the write-ahead log inside a [`WalStore`] directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the compacted snapshot inside a [`WalStore`] directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Scratch name the snapshot is written under before the atomic rename.
const SNAPSHOT_TMP_FILE: &str = "snapshot.tmp";

/// Magic number opening `wal.log` ("TBW1" little-endian).
const WAL_MAGIC: u32 = 0x3157_4254;
/// Magic number opening `snapshot.bin` ("TBS1" little-endian).
const SNAPSHOT_MAGIC: u32 = 0x3153_4254;
/// On-disk format version of both files.
const FORMAT_VERSION: u16 = 1;
/// Encoded size of the WAL header: magic `u32` + version `u16` +
/// generation `u64`.
const WAL_HEADER_LEN: usize = 14;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes` —
/// the checksum guarding every WAL and snapshot frame.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

impl Wire for CommitMarker {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.dag);
        w.put_u64(self.round);
        w.put_u64(self.digest);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CommitMarker {
            dag: r.u64()?,
            round: r.u64()?,
            digest: r.u64()?,
        })
    }
}

/// One logical WAL entry. The on-disk frame around it is
/// `[u32 payload len][u32 crc32][payload]` with the payload in the standard
/// [`Wire`] encoding ([`encode_frame`] / [`decode_frames`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A coalesced sequence of write batches from the commit pipeline,
    /// logged and replayed in order.
    Batches(Vec<WriteBatch>),
    /// A single write from the cross-shard execution path.
    Put(Key, Value),
    /// A commit boundary: everything before this frame belongs to the
    /// committed prefix ending at `(dag, round)` with the given digest.
    Commit(CommitMarker),
}

fn encode_batch_writes(batch: &WriteBatch, w: &mut WireWriter) {
    w.put_len(batch.len());
    for (key, value) in batch.iter() {
        Wire::encode(key, w);
        value.encode(w);
    }
}

fn encode_batches_payload(batches: &[WriteBatch], w: &mut WireWriter) {
    w.put_u8(0);
    w.put_len(batches.len());
    for batch in batches {
        encode_batch_writes(batch, w);
    }
}

impl Wire for WalRecord {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            WalRecord::Batches(batches) => encode_batches_payload(batches, w),
            WalRecord::Put(key, value) => {
                w.put_u8(1);
                Wire::encode(key, w);
                value.encode(w);
            }
            WalRecord::Commit(marker) => {
                w.put_u8(2);
                marker.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => {
                let n_batches = r.seq_len()?;
                let mut batches = Vec::with_capacity(n_batches);
                for _ in 0..n_batches {
                    let n_writes = r.seq_len()?;
                    let mut batch = WriteBatch::with_capacity(n_writes);
                    for _ in 0..n_writes {
                        batch.put(Key::decode(r)?, Value::decode(r)?);
                    }
                    batches.push(batch);
                }
                Ok(WalRecord::Batches(batches))
            }
            1 => Ok(WalRecord::Put(Key::decode(r)?, Value::decode(r)?)),
            2 => Ok(WalRecord::Commit(CommitMarker::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "WalRecord",
                tag: u32::from(tag),
            }),
        }
    }
}

/// Wraps an already-encoded payload in the `[len][crc][payload]` WAL frame.
fn frame_payload(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes one record as a complete WAL frame (length prefix + CRC +
/// payload). The exact bytes [`WalStore`] appends to `wal.log`.
pub fn encode_frame(record: &WalRecord) -> Vec<u8> {
    frame_payload(&record.to_wire_bytes())
}

/// Decodes the valid frame prefix of `buf`, returning the records and the
/// number of bytes they occupied. Decoding stops cleanly — never panics,
/// never over-allocates — at the first torn frame (short header, length
/// past the buffer end), CRC mismatch, or malformed payload: exactly the
/// conditions a crash mid-append leaves behind. Bytes past the valid
/// prefix are the caller's to discard.
pub fn decode_frames(buf: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= 8 {
        let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]) as usize;
        let crc = u32::from_le_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
        let start = pos + 8;
        if len > buf.len() - start {
            break; // torn tail: the payload never finished writing
        }
        let payload = &buf[start..start + len];
        if crc32(payload) != crc {
            break; // corrupt frame
        }
        let Ok(record) = WalRecord::from_wire_bytes(payload) else {
            break; // CRC-valid but malformed payload: treat as corruption
        };
        records.push(record);
        pos = start + len;
    }
    (records, pos)
}

/// Encodes the 14-byte WAL file header for the given generation.
pub fn wal_header_bytes(generation: u64) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u32(WAL_MAGIC);
    w.put_u16(FORMAT_VERSION);
    w.put_u64(generation);
    w.into_bytes()
}

/// Parses a WAL header, returning its generation. `None` on a short file,
/// wrong magic, or unsupported version — all treated as "no usable WAL".
fn decode_wal_header(buf: &[u8]) -> Option<u64> {
    if buf.len() < WAL_HEADER_LEN {
        return None;
    }
    let mut r = WireReader::new(&buf[..WAL_HEADER_LEN]);
    if r.u32().ok()? != WAL_MAGIC || r.u16().ok()? != FORMAT_VERSION {
        return None;
    }
    r.u64().ok()
}

/// The decoded contents of `snapshot.bin`.
struct SnapshotRecord {
    generation: u64,
    total_writes: u64,
    last_commit: Option<CommitMarker>,
    entries: Vec<(Key, Versioned)>,
}

impl Wire for SnapshotRecord {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.generation);
        w.put_u64(self.total_writes);
        self.last_commit.encode(w);
        w.put_len(self.entries.len());
        for (key, versioned) in &self.entries {
            Wire::encode(key, w);
            versioned.value.encode(w);
            w.put_u64(versioned.version);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let generation = r.u64()?;
        let total_writes = r.u64()?;
        let last_commit = Option::<CommitMarker>::decode(r)?;
        let n = r.seq_len()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let key = Key::decode(r)?;
            let value = Value::decode(r)?;
            let version = r.u64()?;
            entries.push((key, Versioned::new(value, version)));
        }
        Ok(SnapshotRecord {
            generation,
            total_writes,
            last_commit,
            entries,
        })
    }
}

fn encode_snapshot_file(record: &SnapshotRecord) -> Vec<u8> {
    let mut header = WireWriter::new();
    header.put_u32(SNAPSHOT_MAGIC);
    header.put_u16(FORMAT_VERSION);
    let mut out = header.into_bytes();
    out.extend_from_slice(&frame_payload(&record.to_wire_bytes()));
    out
}

fn decode_snapshot_file(buf: &[u8]) -> Result<SnapshotRecord, String> {
    let mut r = WireReader::new(buf);
    if r.u32().map_err(|e| e.to_string())? != SNAPSHOT_MAGIC {
        return Err("bad snapshot magic".to_string());
    }
    if r.u16().map_err(|e| e.to_string())? != FORMAT_VERSION {
        return Err("unsupported snapshot version".to_string());
    }
    // The body is a single `[len][crc][payload]` frame, same as the WAL.
    let rest = &buf[6..];
    if rest.len() < 8 {
        return Err("short snapshot frame".to_string());
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
    if len != rest.len() - 8 {
        return Err("snapshot frame length mismatch".to_string());
    }
    let payload = &rest[8..];
    if crc32(payload) != crc {
        return Err("snapshot CRC mismatch".to_string());
    }
    SnapshotRecord::from_wire_bytes(payload).map_err(|e| format!("malformed snapshot payload: {e}"))
}

/// Tuning knobs of a [`WalStore`]. Neither knob affects correctness or the
/// recovered state — only when the buffer drains and the log compacts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalOptions {
    /// Compact the WAL into a snapshot once it exceeds this many bytes
    /// (checked at commit boundaries).
    pub compact_wal_bytes: u64,
    /// Flush the B^ε buffer into the striped store once it holds this many
    /// pending writes.
    pub flush_buffered_writes: usize,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            compact_wal_bytes: 4 * 1024 * 1024,
            flush_buffered_writes: 1024,
        }
    }
}

/// What [`WalStore::open`] found and did while recovering a directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// A snapshot file was loaded.
    pub snapshot_loaded: bool,
    /// Valid WAL frames replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Bytes discarded past the valid prefix (torn tail or a
    /// stale-generation log left by a crash mid-compaction).
    pub truncated_bytes: u64,
    /// The last durable commit marker after recovery.
    pub last_commit: Option<CommitMarker>,
}

struct WalState {
    writer: BufWriter<File>,
    wal_bytes: u64,
    generation: u64,
    /// Ordered pending batches: the B^ε buffer. Replay order equals apply
    /// order because WAL append and buffer insertion happen under one lock.
    buffer: Vec<WriteBatch>,
    buffered_writes: usize,
    /// Key → (value, version-after-flush) for every pending write, serving
    /// reads without draining the buffer.
    overlay: HashMap<Key, Versioned>,
    last_commit: Option<CommitMarker>,
    compactions: u64,
}

/// The durable [`Store`] backend. See the module docs for the design and
/// `docs/STORAGE.md` for the on-disk format.
///
/// # Panics
///
/// Mutating methods panic on I/O errors: a replica whose commit path can no
/// longer reach its log has no safe way to continue, and the harness treats
/// the panic like a crash.
pub struct WalStore {
    inner: MemStore,
    dir: PathBuf,
    options: WalOptions,
    recovery: RecoveryInfo,
    state: Mutex<WalState>,
}

impl WalStore {
    /// Creates or recovers a store rooted at `dir`.
    ///
    /// Recovery loads `snapshot.bin` (exact per-key versions and write
    /// counters), replays the valid prefix of `wal.log` when its generation
    /// matches the snapshot's, truncates anything past that prefix, and
    /// leaves the log open for appending. A fresh directory starts empty at
    /// generation 0. A corrupt snapshot file is an error — unlike a torn
    /// WAL tail it cannot result from a clean crash window.
    pub fn open(dir: impl AsRef<Path>, options: WalOptions) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let inner = MemStore::new();
        let mut recovery = RecoveryInfo::default();
        let mut generation = 0u64;
        let mut last_commit = None;

        let snapshot_path = dir.join(SNAPSHOT_FILE);
        if snapshot_path.exists() {
            let bytes = std::fs::read(&snapshot_path)?;
            let snap = decode_snapshot_file(&bytes).map_err(|reason| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {reason}", snapshot_path.display()),
                )
            })?;
            inner.restore(snap.entries);
            inner.set_total_writes(snap.total_writes);
            generation = snap.generation;
            last_commit = snap.last_commit;
            recovery.snapshot_loaded = true;
        }

        let wal_path = dir.join(WAL_FILE);
        let existing = std::fs::read(&wal_path).unwrap_or_default();
        let mut valid_len = 0usize;
        match decode_wal_header(&existing) {
            // A log from the snapshot's own generation: replay it.
            Some(gen) if gen == generation => {
                let (records, consumed) = decode_frames(&existing[WAL_HEADER_LEN..]);
                for record in &records {
                    match record {
                        WalRecord::Batches(batches) => inner.apply_many(batches.iter()),
                        WalRecord::Put(key, value) => inner.put(*key, value.clone()),
                        WalRecord::Commit(marker) => last_commit = Some(*marker),
                    }
                }
                recovery.replayed_records = records.len() as u64;
                valid_len = WAL_HEADER_LEN + consumed;
            }
            // A stale generation means the crash hit between the snapshot
            // rename and the WAL truncate: the snapshot already contains
            // everything in this log, so replaying it would double-apply.
            Some(_) | None => {}
        }
        recovery.truncated_bytes = (existing.len() - valid_len) as u64;
        recovery.last_commit = last_commit;

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)?;
        file.set_len(valid_len as u64)?;
        file.seek(SeekFrom::End(0))?;
        let mut writer = BufWriter::new(file);
        let mut wal_bytes = valid_len as u64;
        if valid_len == 0 {
            let header = wal_header_bytes(generation);
            writer.write_all(&header)?;
            writer.flush()?;
            writer.get_ref().sync_data()?;
            wal_bytes = header.len() as u64;
        }

        Ok(WalStore {
            inner,
            dir,
            options,
            recovery,
            state: Mutex::new(WalState {
                writer,
                wal_bytes,
                generation,
                buffer: Vec::new(),
                buffered_writes: 0,
                overlay: HashMap::new(),
                last_commit,
                compactions: 0,
            }),
        })
    }

    /// What [`WalStore::open`] found and did.
    pub fn recovery(&self) -> RecoveryInfo {
        self.recovery
    }

    /// Completed compactions since open.
    pub fn compactions(&self) -> u64 {
        self.state.lock().compactions
    }

    /// Current size of the WAL file in bytes (including buffered appends).
    pub fn wal_bytes(&self) -> u64 {
        self.state.lock().wal_bytes
    }

    /// Forces a compaction: flushes the buffer, writes a fresh snapshot and
    /// truncates the WAL. Normally triggered automatically at a commit
    /// boundary once the log exceeds
    /// [`WalOptions::compact_wal_bytes`].
    pub fn compact(&self) {
        let mut state = self.state.lock();
        self.compact_locked(&mut state);
    }

    fn append_frame(&self, state: &mut WalState, frame: &[u8]) {
        state
            .writer
            .write_all(frame)
            .unwrap_or_else(|err| panic!("WAL append to {} failed: {err}", self.dir.display()));
        state.wal_bytes += frame.len() as u64;
    }

    fn sync_locked(&self, state: &mut WalState) {
        state
            .writer
            .flush()
            .and_then(|()| state.writer.get_ref().sync_data())
            .unwrap_or_else(|err| panic!("WAL fsync in {} failed: {err}", self.dir.display()));
    }

    /// Parks `batch`'s writes in the B^ε buffer and overlay. The WAL record
    /// covering them must already be appended by the caller.
    fn buffer_batch(&self, state: &mut WalState, batch: WriteBatch) {
        for (key, value) in batch.iter() {
            let version = match state.overlay.get(key) {
                Some(pending) => pending.version + 1,
                None => self.inner.get_versioned(key).version + 1,
            };
            state
                .overlay
                .insert(*key, Versioned::new(value.clone(), version));
        }
        state.buffered_writes += batch.len();
        state.buffer.push(batch);
    }

    fn flush_locked(&self, state: &mut WalState) {
        if state.buffer.is_empty() {
            return;
        }
        self.inner.apply_many(state.buffer.iter());
        state.buffer.clear();
        state.overlay.clear();
        state.buffered_writes = 0;
    }

    fn maybe_flush(&self, state: &mut WalState) {
        if state.buffered_writes >= self.options.flush_buffered_writes {
            self.flush_locked(state);
        }
    }

    fn compact_locked(&self, state: &mut WalState) {
        self.flush_locked(state);
        let generation = state.generation + 1;
        let snapshot = self.inner.snapshot();
        let record = SnapshotRecord {
            generation,
            total_writes: self.inner.stats().total_writes,
            last_commit: state.last_commit,
            entries: snapshot.iter().map(|(k, v)| (*k, v.clone())).collect(),
        };
        let tmp_path = self.dir.join(SNAPSHOT_TMP_FILE);
        let final_path = self.dir.join(SNAPSHOT_FILE);
        let write_snapshot = || -> io::Result<()> {
            let mut file = File::create(&tmp_path)?;
            file.write_all(&encode_snapshot_file(&record))?;
            file.sync_data()?;
            drop(file);
            std::fs::rename(&tmp_path, &final_path)?;
            // Make the rename itself durable before the WAL is truncated.
            if let Ok(dir) = File::open(&self.dir) {
                let _ = dir.sync_all();
            }
            Ok(())
        };
        write_snapshot()
            .unwrap_or_else(|err| panic!("snapshot write in {} failed: {err}", self.dir.display()));

        let reset_wal = || -> io::Result<BufWriter<File>> {
            let mut file = OpenOptions::new()
                .write(true)
                .truncate(true)
                .open(self.dir.join(WAL_FILE))?;
            file.write_all(&wal_header_bytes(generation))?;
            file.sync_data()?;
            Ok(BufWriter::new(file))
        };
        state.writer = reset_wal()
            .unwrap_or_else(|err| panic!("WAL reset in {} failed: {err}", self.dir.display()));
        state.wal_bytes = WAL_HEADER_LEN as u64;
        state.generation = generation;
        state.compactions += 1;
    }
}

impl KvRead for WalStore {
    fn get(&self, key: &Key) -> Value {
        self.get_versioned(key).value
    }

    fn get_versioned(&self, key: &Key) -> Versioned {
        let state = self.state.lock();
        if let Some(pending) = state.overlay.get(key) {
            return pending.clone();
        }
        self.inner.get_versioned(key)
    }
}

impl KvWrite for WalStore {
    fn put(&self, key: Key, value: Value) {
        let mut state = self.state.lock();
        let record = WalRecord::Put(key, value.clone());
        self.append_frame(&mut state, &encode_frame(&record));
        let mut batch = WriteBatch::with_capacity(1);
        batch.put(key, value);
        self.buffer_batch(&mut state, batch);
        self.maybe_flush(&mut state);
    }
}

impl Store for WalStore {
    fn apply_batches(&self, batches: &[WriteBatch]) {
        if batches.iter().all(WriteBatch::is_empty) {
            return;
        }
        let mut state = self.state.lock();
        let mut payload = WireWriter::new();
        encode_batches_payload(batches, &mut payload);
        self.append_frame(&mut state, &frame_payload(&payload.into_bytes()));
        for batch in batches {
            if !batch.is_empty() {
                self.buffer_batch(&mut state, batch.clone());
            }
        }
        self.maybe_flush(&mut state);
    }

    fn snapshot(&self) -> Snapshot {
        let mut state = self.state.lock();
        self.flush_locked(&mut state);
        self.inner.snapshot()
    }

    fn stats(&self) -> StoreStats {
        let mut state = self.state.lock();
        self.flush_locked(&mut state);
        self.inner.stats()
    }

    fn load_entries(&self, entries: &mut dyn Iterator<Item = (Key, Value)>) {
        let batch: WriteBatch = entries.collect();
        if batch.is_empty() {
            return;
        }
        let mut state = self.state.lock();
        let mut payload = WireWriter::new();
        encode_batches_payload(std::slice::from_ref(&batch), &mut payload);
        self.append_frame(&mut state, &frame_payload(&payload.into_bytes()));
        // Initial state is applied directly (the buffer is for steady-state
        // batches) and made durable immediately: a replica that crashes
        // before its first commit must still recover its genesis state.
        self.inner.apply_batch(&batch);
        self.sync_locked(&mut state);
    }

    fn commit_marker(&self, marker: CommitMarker) {
        let mut state = self.state.lock();
        self.append_frame(&mut state, &encode_frame(&WalRecord::Commit(marker)));
        self.sync_locked(&mut state);
        state.last_commit = Some(marker);
        if state.wal_bytes >= self.options.compact_wal_bytes {
            self.compact_locked(&mut state);
        }
    }

    fn last_commit(&self) -> Option<CommitMarker> {
        self.state.lock().last_commit
    }

    fn persistent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn batch(entries: &[(u64, i64)]) -> WriteBatch {
        entries
            .iter()
            .map(|(k, v)| (Key::checking(*k), Value::int(*v)))
            .collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let record = WalRecord::Batches(vec![batch(&[(1, 10), (2, 20)]), batch(&[(1, 11)])]);
        let frame = encode_frame(&record);
        let (decoded, consumed) = decode_frames(&frame);
        assert_eq!(decoded, vec![record.clone()]);
        assert_eq!(consumed, frame.len());

        // A flipped payload byte stops decoding at the corrupt frame.
        let mut corrupt = frame.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        let (decoded, consumed) = decode_frames(&corrupt);
        assert!(decoded.is_empty());
        assert_eq!(consumed, 0);

        // A torn tail decodes the valid prefix only.
        let mut two = frame.clone();
        two.extend_from_slice(&frame[..frame.len() - 3]);
        let (decoded, consumed) = decode_frames(&two);
        assert_eq!(decoded, vec![record]);
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn reads_see_buffered_writes_through_the_overlay() {
        let dir = TempDir::new("wal-overlay").unwrap();
        let store = WalStore::open(dir.path(), WalOptions::default()).unwrap();
        store.apply_batch(&batch(&[(1, 10)]));
        store.apply_batch(&batch(&[(1, 20)]));
        // Still buffered (threshold not reached), but reads see the writes
        // with their post-flush versions.
        assert_eq!(store.get(&Key::checking(1)), Value::int(20));
        assert_eq!(store.get_versioned(&Key::checking(1)).version, 2);
        assert_eq!(store.stats().total_writes, 2);
    }

    #[test]
    fn open_recovers_state_versions_and_marker() {
        let dir = TempDir::new("wal-recover").unwrap();
        {
            let store = WalStore::open(dir.path(), WalOptions::default()).unwrap();
            store.load_entries(&mut (0..4u64).map(|i| (Key::checking(i), Value::int(100))));
            store.apply_batch(&batch(&[(0, 90), (1, 110)]));
            store.put(Key::savings(7), Value::int(5));
            store.commit_marker(CommitMarker {
                dag: 0,
                round: 2,
                digest: 0xfeed,
            });
        }
        let recovered = WalStore::open(dir.path(), WalOptions::default()).unwrap();
        let info = recovered.recovery();
        assert!(!info.snapshot_loaded);
        assert_eq!(info.replayed_records, 4);
        assert_eq!(info.truncated_bytes, 0);
        assert_eq!(
            recovered.last_commit(),
            Some(CommitMarker {
                dag: 0,
                round: 2,
                digest: 0xfeed,
            })
        );
        assert_eq!(recovered.get(&Key::checking(0)), Value::int(90));
        assert_eq!(recovered.get_versioned(&Key::checking(0)).version, 2);
        assert_eq!(recovered.get(&Key::savings(7)), Value::int(5));
        assert_eq!(recovered.stats().total_writes, 7);
    }

    #[test]
    fn torn_tail_is_truncated_cleanly() {
        let dir = TempDir::new("wal-torn").unwrap();
        {
            let store = WalStore::open(dir.path(), WalOptions::default()).unwrap();
            store.apply_batch(&batch(&[(1, 10)]));
            store.commit_marker(CommitMarker {
                dag: 0,
                round: 1,
                digest: 1,
            });
        }
        // Simulate a crash mid-append: half a frame after the last commit.
        let wal_path = dir.path().join(WAL_FILE);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let torn = encode_frame(&WalRecord::Put(Key::checking(9), Value::int(9)));
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(&wal_path, &bytes).unwrap();

        let recovered = WalStore::open(dir.path(), WalOptions::default()).unwrap();
        assert_eq!(
            recovered.recovery().truncated_bytes,
            (torn.len() / 2) as u64
        );
        assert_eq!(recovered.get(&Key::checking(1)), Value::int(10));
        assert!(recovered.get(&Key::checking(9)).is_none());
        // The truncated store keeps working.
        recovered.put(Key::checking(9), Value::int(1));
        assert_eq!(recovered.get(&Key::checking(9)), Value::int(1));
    }

    #[test]
    fn compaction_snapshots_and_truncates_then_recovers() {
        let dir = TempDir::new("wal-compact").unwrap();
        let options = WalOptions {
            compact_wal_bytes: 256,
            flush_buffered_writes: 4,
        };
        {
            let store = WalStore::open(dir.path(), options).unwrap();
            for round in 0..8u64 {
                store.apply_batch(&batch(&[(round % 3, round as i64)]));
                store.commit_marker(CommitMarker {
                    dag: 0,
                    round,
                    digest: round,
                });
            }
            assert!(store.compactions() > 0, "threshold must have triggered");
            assert!(store.wal_bytes() < 256 + 64);
        }
        let recovered = WalStore::open(dir.path(), options).unwrap();
        assert!(recovered.recovery().snapshot_loaded);
        assert_eq!(
            recovered.last_commit(),
            Some(CommitMarker {
                dag: 0,
                round: 7,
                digest: 7,
            })
        );
        assert_eq!(recovered.get(&Key::checking(1)), Value::int(7));
        // total_writes survives the snapshot round-trip.
        assert_eq!(recovered.stats().total_writes, 8);
    }

    #[test]
    fn stale_generation_wal_is_not_double_applied() {
        let dir = TempDir::new("wal-stale").unwrap();
        let options = WalOptions {
            compact_wal_bytes: 1, // compact at every commit boundary
            flush_buffered_writes: 1024,
        };
        {
            let store = WalStore::open(dir.path(), options).unwrap();
            store.apply_batch(&batch(&[(1, 10)]));
            store.commit_marker(CommitMarker {
                dag: 0,
                round: 1,
                digest: 1,
            });
        }
        // Simulate the crash window between snapshot rename and WAL
        // truncate: put back a generation-0 WAL holding the same write.
        let mut stale = wal_header_bytes(0);
        stale.extend_from_slice(&encode_frame(&WalRecord::Batches(vec![batch(&[(1, 10)])])));
        std::fs::write(dir.path().join(WAL_FILE), &stale).unwrap();

        let recovered = WalStore::open(dir.path(), options).unwrap();
        assert_eq!(recovered.recovery().replayed_records, 0);
        assert!(recovered.recovery().truncated_bytes > 0);
        // One write, not two: the stale log was discarded.
        assert_eq!(recovered.get_versioned(&Key::checking(1)).version, 1);
        assert_eq!(recovered.stats().total_writes, 1);
    }

    #[test]
    fn recovering_twice_is_idempotent() {
        let dir = TempDir::new("wal-idem").unwrap();
        {
            let store = WalStore::open(dir.path(), WalOptions::default()).unwrap();
            store.apply_batches(&[batch(&[(1, 1), (2, 2)]), batch(&[(1, 3)])]);
            store.commit_marker(CommitMarker {
                dag: 0,
                round: 1,
                digest: 9,
            });
        }
        let once = WalStore::open(dir.path(), WalOptions::default()).unwrap();
        let snap_once = Store::snapshot(&once);
        let stats_once = Store::stats(&once);
        drop(once);
        let twice = WalStore::open(dir.path(), WalOptions::default()).unwrap();
        assert!(Store::snapshot(&twice).diff_values(&snap_once).is_empty());
        assert_eq!(Store::stats(&twice), stats_once);
        assert_eq!(twice.last_commit().map(|m| m.digest), Some(9));
    }
}
