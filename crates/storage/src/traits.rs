//! Storage access traits.

use tb_types::{Key, Value};

/// A value together with the version counter of its key.
///
/// The version starts at zero for absent keys and increases by one with
/// every committed write. The OCC baseline validates transactions by
/// comparing the versions it read against the current versions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Versioned {
    /// The stored value ([`Value::None`] when the key is absent).
    pub value: Value,
    /// Number of committed writes to the key.
    pub version: u64,
}

impl Versioned {
    /// A versioned view of an absent key.
    pub fn absent() -> Self {
        Versioned::default()
    }

    /// Creates a versioned value.
    pub fn new(value: Value, version: u64) -> Self {
        Versioned { value, version }
    }
}

/// Read access to a key-value state.
pub trait KvRead {
    /// Returns the current value of `key` ([`Value::None`] if absent).
    fn get(&self, key: &Key) -> Value;

    /// Returns the current value and version of `key`.
    fn get_versioned(&self, key: &Key) -> Versioned;

    /// Returns `true` if `key` currently holds a value.
    fn contains(&self, key: &Key) -> bool {
        !self.get(key).is_none()
    }
}

/// Write access to a key-value state.
pub trait KvWrite {
    /// Sets `key` to `value`, bumping its version.
    fn put(&self, key: Key, value: Value);

    /// Removes `key` (equivalent to writing [`Value::None`]).
    fn delete(&self, key: Key) {
        self.put(key, Value::None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_versioned_is_zero() {
        let v = Versioned::absent();
        assert_eq!(v.version, 0);
        assert!(v.value.is_none());
    }

    #[test]
    fn constructor_stores_fields() {
        let v = Versioned::new(Value::int(5), 3);
        assert_eq!(v.value, Value::int(5));
        assert_eq!(v.version, 3);
    }
}
