//! Point-in-time snapshots.

use crate::traits::{KvRead, Versioned};
use std::collections::HashMap;
use std::sync::Arc;
use tb_types::{Key, Value};

/// An immutable, cheaply clonable point-in-time view of a [`crate::MemStore`].
///
/// The OCC baseline executes transactions against a snapshot and validates
/// the versions it read against the live store; the benchmark harness uses
/// snapshots to compare the final state produced by different executors.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    map: Arc<HashMap<Key, Versioned>>,
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn empty() -> Self {
        Snapshot::default()
    }

    /// Wraps an already-collected map.
    pub fn from_map(map: HashMap<Key, Versioned>) -> Self {
        Snapshot { map: Arc::new(map) }
    }

    /// Number of keys in the snapshot.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the snapshot contains no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Versioned)> {
        self.map.iter()
    }

    /// Sum of all integer values, used by conservation checks. Wrapping,
    /// like [`crate::StoreStats::int_sum`]: the checks compare sums for
    /// equality, and adversarial values must not panic.
    pub fn int_sum(&self) -> i64 {
        self.map
            .values()
            .fold(0i64, |sum, v| sum.wrapping_add(v.value.as_int()))
    }

    /// Returns the set of keys on which two snapshots disagree (ignoring
    /// version counters, comparing only values). Useful in tests asserting
    /// that two execution strategies produced the same final state.
    pub fn diff_values(&self, other: &Snapshot) -> Vec<Key> {
        let mut diff = Vec::new();
        for (k, v) in self.map.iter() {
            if other.get(k) != v.value {
                diff.push(*k);
            }
        }
        for k in other.map.keys() {
            if !self.map.contains_key(k) && !other.get(k).is_none() {
                diff.push(*k);
            }
        }
        diff.sort_unstable();
        diff.dedup();
        diff
    }
}

impl KvRead for Snapshot {
    fn get(&self, key: &Key) -> Value {
        self.map
            .get(key)
            .map(|v| v.value.clone())
            .unwrap_or(Value::None)
    }

    fn get_versioned(&self, key: &Key) -> Versioned {
        self.map.get(key).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(entries: &[(u64, i64)]) -> Snapshot {
        let map = entries
            .iter()
            .map(|(k, v)| (Key::scratch(*k), Versioned::new(Value::int(*v), 1)))
            .collect();
        Snapshot::from_map(map)
    }

    #[test]
    fn empty_snapshot_reads_none() {
        let s = Snapshot::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.get(&Key::scratch(1)).is_none());
        assert_eq!(s.get_versioned(&Key::scratch(1)).version, 0);
    }

    #[test]
    fn int_sum_adds_all_values() {
        let s = snap(&[(1, 10), (2, 20), (3, -5)]);
        assert_eq!(s.int_sum(), 25);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn diff_values_reports_divergent_keys_only() {
        let a = snap(&[(1, 10), (2, 20)]);
        let b = snap(&[(1, 10), (2, 21), (3, 30)]);
        assert_eq!(a.diff_values(&b), vec![Key::scratch(2), Key::scratch(3)]);
        assert_eq!(a.diff_values(&a), Vec::<Key>::new());
    }

    #[test]
    fn clones_share_the_underlying_map() {
        let a = snap(&[(1, 1)]);
        let b = a.clone();
        assert_eq!(b.get(&Key::scratch(1)), Value::int(1));
        assert_eq!(Arc::strong_count(&a.map), 2);
    }
}
