//! A scoped temporary directory for tests and benches.
//!
//! Durable-store tests need real directories; this keeps them out of the
//! repository (everything lives under the system temp dir) and cleans them
//! up on drop, so no run can leave WAL or snapshot files behind.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide counter making concurrent temp dirs distinct.
static NEXT_TEMP_DIR: AtomicU64 = AtomicU64::new(0);

/// A directory under [`std::env::temp_dir`] that is removed (best-effort,
/// recursively) when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory named after `prefix`, the process id and a
    /// process-wide counter — unique across the threads of one test binary
    /// and across concurrently running binaries.
    pub fn new(prefix: &str) -> io::Result<Self> {
        let n = NEXT_TEMP_DIR.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("tb-{prefix}-{pid}-{n}", pid = std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let keep;
        {
            let dir = TempDir::new("probe").unwrap();
            keep = dir.path().to_path_buf();
            assert!(keep.is_dir());
            std::fs::write(keep.join("wal.log"), b"x").unwrap();
        }
        assert!(!keep.exists(), "dropped TempDir must remove its tree");
    }

    #[test]
    fn two_dirs_never_collide() {
        let a = TempDir::new("probe").unwrap();
        let b = TempDir::new("probe").unwrap();
        assert_ne!(a.path(), b.path());
    }
}
