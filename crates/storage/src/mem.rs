//! The in-memory store.

use crate::batch::WriteBatch;
use crate::snapshot::Snapshot;
use crate::traits::{KvRead, KvWrite, Versioned};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use tb_types::{Key, Value};

/// Number of internal lock stripes. A power of two so the stripe index is a
/// cheap mask of the key hash.
const STRIPES: usize = 64;

/// Aggregate statistics of a store, used by tests and benchmark reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of keys currently holding a value.
    pub keys: usize,
    /// Total number of committed write operations since creation.
    pub total_writes: u64,
    /// Sum of all integer values (useful for conservation-of-money checks in
    /// the SmallBank workload).
    pub int_sum: i64,
}

/// A striped, versioned, in-memory key-value store.
///
/// Reads and writes to different stripes proceed in parallel; writes to the
/// same stripe serialize on a `parking_lot` rwlock. Every write bumps the
/// key's version counter.
#[derive(Debug)]
pub struct MemStore {
    stripes: Vec<RwLock<HashMap<Key, Versioned>>>,
    total_writes: AtomicU64,
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemStore {
            stripes: (0..STRIPES).map(|_| RwLock::new(HashMap::new())).collect(),
            total_writes: AtomicU64::new(0),
        }
    }

    fn stripe_of(&self, key: &Key) -> usize {
        // Multiply-shift hash of the compact key encoding.
        let h = key.encode().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> 32) as usize & (STRIPES - 1)
    }

    /// Applies a write batch atomically with respect to per-key versioning.
    ///
    /// The batch is applied stripe by stripe; the per-key versions are bumped
    /// exactly once per written key.
    pub fn apply_batch(&self, batch: &WriteBatch) {
        self.apply_many(std::iter::once(batch));
    }

    /// Applies a sequence of write batches, coalescing them stripe by stripe.
    ///
    /// Observably equivalent to calling [`MemStore::apply_batch`] on each
    /// batch in order — same final values, same per-key versions, same
    /// [`StoreStats`] — but each lock stripe is written under a single lock
    /// acquisition for the whole sequence instead of one acquisition per key
    /// per batch. This is what the pipelined commit path uses to drain the
    /// apply queue while the next block is still being validated.
    ///
    /// Writes to one key keep their cross-batch order because a key always
    /// hashes to the same stripe and the per-stripe buckets preserve the
    /// `(batch, insertion)` order of the input.
    pub fn apply_many<'a, I>(&self, batches: I)
    where
        I: IntoIterator<Item = &'a WriteBatch>,
    {
        let mut per_stripe: Vec<Vec<(Key, &'a Value)>> = vec![Vec::new(); STRIPES];
        let mut total = 0u64;
        for batch in batches {
            for (key, value) in batch.iter() {
                per_stripe[self.stripe_of(key)].push((*key, value));
                total += 1;
            }
        }
        if total == 0 {
            return;
        }
        for (idx, writes) in per_stripe.into_iter().enumerate() {
            if writes.is_empty() {
                continue;
            }
            let mut guard = self.stripes[idx].write();
            for (key, value) in writes {
                let entry = guard.entry(key).or_default();
                entry.version += 1;
                entry.value = value.clone();
            }
        }
        self.total_writes.fetch_add(total, Ordering::Relaxed);
    }

    /// Takes a consistent point-in-time snapshot of the whole store.
    pub fn snapshot(&self) -> Snapshot {
        // Acquire read locks on all stripes before copying any of them so the
        // snapshot cannot observe a torn multi-key update from apply_batch
        // callers that hold an external commit lock.
        let guards: Vec<_> = self.stripes.iter().map(|s| s.read()).collect();
        let mut map = HashMap::new();
        for guard in &guards {
            for (k, v) in guard.iter() {
                map.insert(*k, v.clone());
            }
        }
        Snapshot::from_map(map)
    }

    /// Bulk-loads initial state without bumping versions beyond 1 per key.
    pub fn load(&self, entries: impl IntoIterator<Item = (Key, Value)>) {
        for (k, v) in entries {
            self.put(k, v);
        }
    }

    /// Restores entries with their exact version counters, bypassing the
    /// version-bump and write-count bookkeeping of [`MemStore::put`].
    ///
    /// Only crash recovery should use this: a recovered store must report
    /// the same per-key versions as the store that wrote the snapshot, not
    /// versions restarted from 1. Pair with [`MemStore::set_total_writes`].
    pub fn restore(&self, entries: impl IntoIterator<Item = (Key, Versioned)>) {
        for (key, versioned) in entries {
            let stripe = &self.stripes[self.stripe_of(&key)];
            stripe.write().insert(key, versioned);
        }
    }

    /// Overwrites the lifetime write counter. Only crash recovery should
    /// use this, to carry [`StoreStats::total_writes`] across a restart.
    pub fn set_total_writes(&self, total: u64) {
        self.total_writes.store(total, Ordering::Relaxed);
    }

    /// Returns aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats {
            total_writes: self.total_writes.load(Ordering::Relaxed),
            ..StoreStats::default()
        };
        for stripe in &self.stripes {
            let guard = stripe.read();
            for v in guard.values() {
                if !v.value.is_none() {
                    stats.keys += 1;
                    // Wrapping: conservation checks compare sums for
                    // equality, and adversarial values must not panic.
                    stats.int_sum = stats.int_sum.wrapping_add(v.value.as_int());
                }
            }
        }
        stats
    }

    /// Number of keys currently holding a value.
    pub fn len(&self) -> usize {
        self.stats().keys
    }

    /// True if no key holds a value.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every key. Used between benchmark iterations.
    pub fn clear(&self) {
        for stripe in &self.stripes {
            stripe.write().clear();
        }
    }
}

impl KvRead for MemStore {
    fn get(&self, key: &Key) -> Value {
        self.get_versioned(key).value
    }

    fn get_versioned(&self, key: &Key) -> Versioned {
        let stripe = &self.stripes[self.stripe_of(key)];
        stripe.read().get(key).cloned().unwrap_or_default()
    }
}

impl KvWrite for MemStore {
    fn put(&self, key: Key, value: Value) {
        let stripe = &self.stripes[self.stripe_of(&key)];
        let mut guard = stripe.write();
        let entry = guard.entry(key).or_default();
        entry.version += 1;
        entry.value = value;
        self.total_writes.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn absent_keys_read_as_none_with_version_zero() {
        let store = MemStore::new();
        let v = store.get_versioned(&Key::scratch(1));
        assert!(v.value.is_none());
        assert_eq!(v.version, 0);
        assert!(!store.contains(&Key::scratch(1)));
    }

    #[test]
    fn writes_bump_versions() {
        let store = MemStore::new();
        let k = Key::checking(7);
        store.put(k, Value::int(10));
        assert_eq!(store.get_versioned(&k), Versioned::new(Value::int(10), 1));
        store.put(k, Value::int(20));
        assert_eq!(store.get_versioned(&k), Versioned::new(Value::int(20), 2));
        assert!(store.contains(&k));
    }

    #[test]
    fn delete_writes_none_but_keeps_version_history() {
        let store = MemStore::new();
        let k = Key::scratch(3);
        store.put(k, Value::int(1));
        store.delete(k);
        let v = store.get_versioned(&k);
        assert!(v.value.is_none());
        assert_eq!(v.version, 2);
        assert!(!store.contains(&k));
    }

    #[test]
    fn apply_batch_writes_every_key_once() {
        let store = MemStore::new();
        let mut batch = WriteBatch::new();
        batch.put(Key::checking(1), Value::int(5));
        batch.put(Key::checking(2), Value::int(6));
        batch.put(Key::checking(1), Value::int(7));
        store.apply_batch(&batch);
        assert_eq!(store.get(&Key::checking(1)), Value::int(7));
        assert_eq!(store.get(&Key::checking(2)), Value::int(6));
        assert_eq!(store.get_versioned(&Key::checking(1)).version, 1);
    }

    #[test]
    fn stats_track_keys_sum_and_writes() {
        let store = MemStore::new();
        store.load((0..10).map(|i| (Key::checking(i), Value::int(100))));
        let stats = store.stats();
        assert_eq!(stats.keys, 10);
        assert_eq!(stats.int_sum, 1000);
        assert_eq!(stats.total_writes, 10);
        assert_eq!(store.len(), 10);
        assert!(!store.is_empty());
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn snapshot_is_immutable_under_later_writes() {
        let store = MemStore::new();
        store.put(Key::scratch(1), Value::int(1));
        let snap = store.snapshot();
        store.put(Key::scratch(1), Value::int(2));
        store.put(Key::scratch(2), Value::int(9));
        assert_eq!(snap.get(&Key::scratch(1)), Value::int(1));
        assert!(snap.get(&Key::scratch(2)).is_none());
        assert_eq!(store.get(&Key::scratch(1)), Value::int(2));
    }

    #[test]
    fn concurrent_writers_do_not_lose_version_bumps() {
        let store = Arc::new(MemStore::new());
        let k = Key::checking(0);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    store.put(k, Value::int(1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.get_versioned(&k).version, 800);
        assert_eq!(store.stats().total_writes, 800);
    }
}
