//! The backend-agnostic [`Store`] abstraction.
//!
//! Every consumer of committed state — the commit pipeline, the campaign
//! invariants, the bench harness — talks to a `&dyn Store` instead of a
//! concrete [`MemStore`]. The trait is deliberately object-safe: the commit
//! path holds one boxed store per replica and fans work out to scoped
//! threads, so the trait requires `Send + Sync` and takes batch slices
//! rather than generic iterators.
//!
//! Two backends exist:
//!
//! * [`MemStore`] — the original striped in-memory store; volatile, nearly
//!   free, the default.
//! * [`WalStore`](crate::WalStore) — a durable backend that logs every
//!   batch to a CRC-guarded write-ahead log, buffers it B^ε-style in front
//!   of the in-memory stripes, and compacts into on-disk snapshots (see
//!   `docs/STORAGE.md`).

use crate::batch::WriteBatch;
use crate::mem::{MemStore, StoreStats};
use crate::snapshot::Snapshot;
use crate::traits::{KvRead, KvWrite};
use tb_types::{Key, Value};

/// A committed `(dag, leader round, FNV-1a commit-order digest)` triple.
///
/// The replica appends one marker per committed sub-DAG; a durable backend
/// persists it (and makes everything before it durable), so crash recovery
/// can reconstruct not just the state but the exact commit digest the
/// replica had reached. Volatile backends ignore markers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitMarker {
    /// DAG instance of the committed leader round.
    pub dag: u64,
    /// The committed leader round.
    pub round: u64,
    /// The replica's FNV-1a commit-order digest after this commit.
    pub digest: u64,
}

/// Object-safe storage backend interface: reads, atomic batch application,
/// snapshots, stats, bulk load, and commit-boundary durability hooks.
///
/// `&MemStore` coerces to `&dyn Store`, so existing call sites that pass a
/// concrete store keep working unchanged.
pub trait Store: KvRead + KvWrite + Send + Sync {
    /// Applies a sequence of write batches, coalescing where the backend
    /// can. Observably equivalent to applying each batch in order: same
    /// final values, same per-key versions, same [`StoreStats`].
    fn apply_batches(&self, batches: &[WriteBatch]);

    /// Applies one write batch atomically.
    fn apply_batch(&self, batch: &WriteBatch) {
        self.apply_batches(std::slice::from_ref(batch));
    }

    /// Takes a consistent point-in-time snapshot of the whole store.
    fn snapshot(&self) -> Snapshot;

    /// Returns aggregate statistics.
    fn stats(&self) -> StoreStats;

    /// Bulk-loads initial state (dyn-friendly form of [`MemStore::load`]).
    /// A durable backend both logs and applies the entries, so recovery is
    /// self-contained from an empty directory.
    fn load_entries(&self, entries: &mut dyn Iterator<Item = (Key, Value)>);

    /// Records a commit boundary. A durable backend appends the marker to
    /// its log and makes everything up to it durable (fsync); the default
    /// is a no-op for volatile backends.
    fn commit_marker(&self, _marker: CommitMarker) {}

    /// The last commit marker this backend has made durable, if any.
    fn last_commit(&self) -> Option<CommitMarker> {
        None
    }

    /// True when the backend survives a process crash.
    fn persistent(&self) -> bool {
        false
    }
}

impl Store for MemStore {
    fn apply_batches(&self, batches: &[WriteBatch]) {
        self.apply_many(batches.iter());
    }

    fn snapshot(&self) -> Snapshot {
        MemStore::snapshot(self)
    }

    fn stats(&self) -> StoreStats {
        MemStore::stats(self)
    }

    fn load_entries(&self, entries: &mut dyn Iterator<Item = (Key, Value)>) {
        self.load(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_works_through_the_trait_object() {
        let mem = MemStore::new();
        let store: &dyn Store = &mem;
        let mut batch = WriteBatch::new();
        batch.put(Key::checking(1), Value::int(5));
        store.apply_batch(&batch);
        assert_eq!(store.get(&Key::checking(1)), Value::int(5));
        assert_eq!(store.stats().total_writes, 1);
        assert_eq!(store.snapshot().len(), 1);
        assert!(!store.persistent());
        // Markers are a no-op on the volatile backend.
        store.commit_marker(CommitMarker {
            dag: 0,
            round: 2,
            digest: 42,
        });
        assert_eq!(store.last_commit(), None);
    }

    #[test]
    fn load_entries_matches_load() {
        let mem = MemStore::new();
        let store: &dyn Store = &mem;
        store.load_entries(&mut (0..4).map(|i| (Key::savings(i), Value::int(10))));
        assert_eq!(store.stats().keys, 4);
        assert_eq!(store.get_versioned(&Key::savings(0)).version, 1);
    }

    #[test]
    fn apply_batches_coalesces_like_apply_many() {
        let mem = MemStore::new();
        let store: &dyn Store = &mem;
        let batches: Vec<WriteBatch> = (0..3)
            .map(|i| {
                let mut b = WriteBatch::new();
                b.put(Key::scratch(0), Value::int(i));
                b
            })
            .collect();
        store.apply_batches(&batches);
        assert_eq!(store.get(&Key::scratch(0)), Value::int(2));
        assert_eq!(store.get_versioned(&Key::scratch(0)).version, 3);
    }
}
