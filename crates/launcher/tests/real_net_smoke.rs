//! End-to-end smoke test of the out-of-process cluster: 4 OS processes over
//! localhost TCP commit a SmallBank workload, agree on their commit-order
//! digests, and match an in-process sim run of the same scenario.
//!
//! `harness = false`: the test binary doubles as its own node image — the
//! launcher re-executes `current_exe()` with `TB_NODE_SPEC` set, and the
//! dispatch at the top of `main` turns those re-executions into nodes.

use std::time::Duration;
use tb_core::ScenarioBuilder;
use tb_launcher::{maybe_run_node_from_env, run_real_net_scenario, LaunchOptions};
use tb_workload::SmallBankConfig;

fn main() {
    if maybe_run_node_from_env() {
        return;
    }

    let plan = ScenarioBuilder::new(4)
        .smallbank(SmallBankConfig {
            accounts: 128,
            cross_shard_fraction: 0.0,
            ..SmallBankConfig::default()
        })
        .executors(4, 32)
        .validators(2)
        .rounds(8)
        .seed(7)
        .lockstep()
        .tune(|system| system.ce = system.ce.without_synthetic_cost())
        .build_real_net()
        .expect("fault-free smallbank scenario must be launchable");
    let target = (plan.config.system.max_rounds / 2).max(1) as usize;

    let options = LaunchOptions {
        node_deadline: Duration::from_secs(45),
        check_sim_digest: true,
    };
    let outcome = run_real_net_scenario(&plan, &options).expect("cluster launch failed");

    assert_eq!(outcome.reports.len(), 4, "one report per node process");
    for report in &outcome.reports {
        assert!(
            report.committed_txs > 0,
            "node {} committed nothing",
            report.node
        );
        assert!(
            report.round_commits.len() >= target,
            "node {} committed {} rounds, wanted {}",
            report.node,
            report.round_commits.len(),
            target
        );
        assert!(report.bytes_sent > 0, "byte accounting must be wired up");
        assert!(report.msgs_delivered > 0);
    }
    assert!(
        outcome.nodes_agree,
        "nodes disagreed on commit-order digests: {:?}",
        outcome
            .reports
            .iter()
            .map(|r| (r.node, r.commit_digest))
            .collect::<Vec<_>>()
    );
    assert!(outcome.sim_digest_checked);
    assert!(
        outcome.sim_digest_match,
        "TCP run diverged from the in-process sim twin:\n  tcp  {:?}\n  sim  {:?}",
        outcome.reports[0]
            .round_commits
            .iter()
            .map(|s| (s.round, s.digest))
            .collect::<Vec<_>>(),
        outcome.sim_report.as_ref().map(|sim| sim
            .round_commits
            .iter()
            .map(|s| (s.round, s.digest))
            .collect::<Vec<_>>())
    );
    println!(
        "real-net smoke OK: 4 processes, {} txs committed on node 0, digests agree with sim",
        outcome.reports[0].committed_txs
    );
}
