//! Process launcher for out-of-process Thunderbolt clusters.
//!
//! Takes a validated [`RealNetPlan`] (from
//! [`ScenarioBuilder::build_real_net`](tb_core::ScenarioBuilder::build_real_net)),
//! expands it into one [`NodeSpec`] per replica, spawns N copies of the
//! current executable as node processes on localhost TCP, and collects one
//! [`NodeReport`] per process. Any binary can serve as the node image by
//! calling [`maybe_run_node_from_env`] at the top of `main` — the launcher
//! re-executes `std::env::current_exe()` with the spec hex-encoded in the
//! [`NODE_SPEC_ENV`] environment variable, and the child answers with a
//! single `TB_NODE_REPORT <hex>` line on stdout.
//!
//! After the cluster drains, the launcher checks **cross-node agreement**
//! (all nodes carry identical `(dag, round, digest)` commit samples on their
//! common prefix) and, optionally, runs an in-process **sim twin** of the
//! same scenario and compares its digests too — the lockstep determinism
//! argument in `docs/NET.md` says they must match for fault-free,
//! fully-single-shard scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{self, Read};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use tb_core::scenario::RealNetPlan;
use tb_core::{run_node, ClusterSimulation, NodeReport, NodeSpec, RoundCommitSample, RunReport};
use tb_network::FaultPlan;
use tb_types::wire::{from_hex, to_hex, Wire};

/// Environment variable carrying the hex-encoded [`NodeSpec`] to a child
/// process. Its presence turns any cooperating binary into a node.
pub const NODE_SPEC_ENV: &str = "TB_NODE_SPEC";

/// Prefix of the single stdout line a node process answers with.
pub const NODE_REPORT_PREFIX: &str = "TB_NODE_REPORT ";

/// Node-process dispatch hook. Call this first in `main` (and in
/// `harness = false` test mains) of every binary that may be re-executed as
/// a node. Returns `false` immediately when [`NODE_SPEC_ENV`] is unset;
/// otherwise runs the node to completion, prints its report line and
/// returns `true` so the caller can exit.
///
/// A malformed spec or a node failure terminates the process with a nonzero
/// exit code — the launcher surfaces the missing report.
pub fn maybe_run_node_from_env() -> bool {
    let Ok(hex) = std::env::var(NODE_SPEC_ENV) else {
        return false;
    };
    let spec = from_hex(&hex)
        .and_then(|bytes| NodeSpec::from_wire_bytes(&bytes))
        .unwrap_or_else(|err| {
            eprintln!("thunderbolt-node: bad {NODE_SPEC_ENV}: {err}");
            std::process::exit(2);
        });
    match run_node(spec) {
        Ok(report) => {
            println!("{NODE_REPORT_PREFIX}{}", to_hex(&report.to_wire_bytes()));
            true
        }
        Err(err) => {
            eprintln!("thunderbolt-node: {err}");
            std::process::exit(1);
        }
    }
}

/// Knobs of one launcher invocation.
#[derive(Clone, Debug)]
pub struct LaunchOptions {
    /// Hard wall-clock deadline handed to every node process.
    pub node_deadline: Duration,
    /// Also run an in-process sim twin of the scenario and digest-compare
    /// it against node 0. Only meaningful for lockstep scenarios with
    /// `cross_shard_fraction == 0.0` (see `docs/NET.md`); the result lands
    /// in [`RealNetOutcome::sim_digest_match`].
    pub check_sim_digest: bool,
}

impl Default for LaunchOptions {
    fn default() -> Self {
        LaunchOptions {
            node_deadline: Duration::from_secs(60),
            check_sim_digest: false,
        }
    }
}

/// What a real-net run produced.
#[derive(Clone, Debug)]
pub struct RealNetOutcome {
    /// One report per node, indexed by replica id.
    pub reports: Vec<NodeReport>,
    /// Node 0's counters folded into a sim-shaped [`RunReport`].
    pub observer: RunReport,
    /// All nodes carry identical `(dag, round, digest)` samples on the
    /// common prefix of their commit sequences, and every node committed
    /// at least one round.
    pub nodes_agree: bool,
    /// Whether the in-process sim twin ran.
    pub sim_digest_checked: bool,
    /// Sim twin's commit samples prefix-match node 0's (`false` whenever
    /// the twin did not run).
    pub sim_digest_match: bool,
    /// The sim twin's report, when it ran.
    pub sim_report: Option<RunReport>,
}

/// Expands the plan into per-node specs on freshly reserved localhost
/// ports. Exposed for tests; most callers want [`run_real_net_scenario`].
pub fn node_specs(plan: &RealNetPlan, options: &LaunchOptions) -> io::Result<Vec<NodeSpec>> {
    let n = plan.config.system.n_replicas;
    let ports = reserve_ports(n)?;
    let template = NodeSpec {
        node: 0,
        replicas: n,
        ports,
        mode: plan.config.mode,
        seed: plan.config.seed,
        lockstep: plan.config.lockstep,
        use_skip_blocks: plan.config.use_skip_blocks,
        max_rounds: plan.config.system.max_rounds,
        executors: plan.config.system.ce.executors as u32,
        batch: plan.config.system.ce.batch_size as u32,
        validators: plan.config.system.validators as u32,
        op_cost_ns: plan.config.system.ce.synthetic_op_cost_ns,
        label: plan.config.label.clone().unwrap_or_default(),
        run_deadline_millis: options.node_deadline.as_millis() as u64,
        smallbank: plan.smallbank,
        storage: plan.config.system.storage.clone(),
    };
    Ok((0..n)
        .map(|i| NodeSpec {
            node: i,
            ..template.clone()
        })
        .collect())
}

/// Runs the plan as `n` OS processes (re-executing the current binary, see
/// [`maybe_run_node_from_env`]) and gathers every node's report.
pub fn run_real_net_scenario(
    plan: &RealNetPlan,
    options: &LaunchOptions,
) -> io::Result<RealNetOutcome> {
    let specs = node_specs(plan, options)?;
    let exe = std::env::current_exe()?;
    let mut children: Vec<Child> = Vec::with_capacity(specs.len());
    for spec in &specs {
        let child = Command::new(&exe)
            .env(NODE_SPEC_ENV, to_hex(&spec.to_wire_bytes()))
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn();
        match child {
            Ok(child) => children.push(child),
            Err(err) => {
                for mut child in children {
                    let _ = child.kill();
                }
                return Err(err);
            }
        }
    }

    // Nodes self-terminate at their own deadline; the watchdog margin only
    // catches a hung child (which would otherwise hang CI).
    let watchdog = Instant::now() + options.node_deadline + Duration::from_secs(15);
    let mut reports = Vec::with_capacity(children.len());
    for (i, mut child) in children.into_iter().enumerate() {
        loop {
            match child.try_wait()? {
                Some(_) => break,
                None if Instant::now() >= watchdog => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("node {i} exceeded its deadline and was killed"),
                    ));
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        let mut stdout = String::new();
        if let Some(mut pipe) = child.stdout.take() {
            let _ = pipe.read_to_string(&mut stdout);
        }
        let report = stdout
            .lines()
            .find_map(|line| line.strip_prefix(NODE_REPORT_PREFIX))
            .and_then(|hex| from_hex(hex.trim()).ok())
            .and_then(|bytes| NodeReport::from_wire_bytes(&bytes).ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("node {i} exited without a parsable {NODE_REPORT_PREFIX}line"),
                )
            })?;
        reports.push(report);
    }
    reports.sort_by_key(|report| report.node);

    let nodes_agree = reports.iter().all(|r| !r.round_commits.is_empty())
        && reports
            .windows(2)
            .all(|pair| prefixes_agree(&pair[0].round_commits, &pair[1].round_commits));

    let label = plan.config.label();
    let observer = reports[0].to_run_report(&label, "smallbank", plan.config.system.n_replicas);

    let (sim_digest_checked, sim_digest_match, sim_report) = if options.check_sim_digest {
        // The twin runs the configuration *as the nodes rebuilt it* — not
        // `plan.config` directly — so a knob NodeSpec cannot carry can never
        // silently diverge between the two paths.
        let mut sim =
            ClusterSimulation::new(specs[0].cluster_config(), plan.smallbank, FaultPlan::none());
        let sim_run = sim.run();
        let matches = !sim_run.round_commits.is_empty()
            && !reports[0].round_commits.is_empty()
            && prefixes_agree(&sim_run.round_commits, &reports[0].round_commits);
        (true, matches, Some(sim_run))
    } else {
        (false, false, None)
    };

    Ok(RealNetOutcome {
        reports,
        observer,
        nodes_agree,
        sim_digest_checked,
        sim_digest_match,
        sim_report,
    })
}

/// `(dag, round, digest)` equality over the common prefix of two commit
/// sample sequences; `committed_at` is timing and deliberately ignored.
pub fn prefixes_agree(a: &[RoundCommitSample], b: &[RoundCommitSample]) -> bool {
    a.iter()
        .zip(b.iter())
        .all(|(x, y)| x.dag == y.dag && x.round == y.round && x.digest == y.digest)
}

/// Reserves `n` distinct localhost ports by binding ephemeral listeners and
/// recording their ports before dropping them. A racing process could grab
/// a port between reservation and node start-up; node dial retries and the
/// launcher's agreement checks turn that rare race into a clean failure
/// rather than silent corruption.
fn reserve_ports(n: u32) -> io::Result<Vec<u16>> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0"))
        .collect::<io::Result<_>>()?;
    listeners
        .iter()
        .map(|listener| listener.local_addr().map(|addr| addr.port()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_core::ScenarioBuilder;
    use tb_types::Round;
    use tb_types::SimTime;

    fn sample(round: u64, digest: u64) -> RoundCommitSample {
        RoundCommitSample {
            dag: 0,
            round: Round::new(round),
            committed_at: SimTime::from_millis(round),
            digest,
        }
    }

    #[test]
    fn prefix_agreement_ignores_timing_and_length() {
        let a = vec![sample(1, 10), sample(3, 20)];
        let mut b = vec![sample(1, 10), sample(3, 20), sample(5, 30)];
        b[0].committed_at = SimTime::from_secs(99);
        assert!(prefixes_agree(&a, &b));
        b[1].digest = 21;
        assert!(!prefixes_agree(&a, &b));
        assert!(prefixes_agree(&[], &a));
    }

    #[test]
    fn node_specs_share_everything_but_identity() {
        let plan = ScenarioBuilder::new(4)
            .lockstep()
            .rounds(8)
            .storage(tb_types::StorageConfig::wal("/tmp/tb-launcher-test"))
            .build_real_net()
            .expect("default scenario is launchable");
        let specs = node_specs(&plan, &LaunchOptions::default()).expect("ports reserved");
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].ports, specs[3].ports);
        assert_eq!(specs[0].ports.len(), 4);
        assert!(specs[2].lockstep);
        assert_eq!(specs[2].node, 2);
        assert_eq!(
            specs[1].storage,
            tb_types::StorageConfig::wal("/tmp/tb-launcher-test")
        );
        assert_eq!(
            specs[1].cluster_config().system.storage,
            tb_types::StorageConfig::wal("/tmp/tb-launcher-test")
        );
        // Distinct reserved ports.
        let mut ports = specs[0].ports.clone();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 4);
    }
}
