//! Launches an N-replica Thunderbolt cluster as N OS processes over
//! localhost TCP and prints every node's results.
//!
//! ```text
//! tb-launcher [replicas] [rounds]     # defaults: 4 replicas, 10 rounds
//! ```
//!
//! The cluster runs a fault-free, single-shard SmallBank scenario in
//! lockstep and digest-compares the result against an in-process sim run of
//! the same scenario; a digest mismatch is a hard error. See `docs/NET.md`.

use std::time::Duration;
use tb_core::ScenarioBuilder;
use tb_launcher::{maybe_run_node_from_env, run_real_net_scenario, LaunchOptions};
use tb_workload::SmallBankConfig;

fn main() {
    // This binary is also its own node image: children re-execute it with
    // TB_NODE_SPEC set and take this branch.
    if maybe_run_node_from_env() {
        return;
    }

    let mut args = std::env::args().skip(1);
    let replicas: u32 = args
        .next()
        .map(|arg| arg.parse().expect("replicas must be a number"))
        .unwrap_or(4);
    let rounds: u64 = args
        .next()
        .map(|arg| arg.parse().expect("rounds must be a number"))
        .unwrap_or(10);

    let plan = ScenarioBuilder::new(replicas)
        .smallbank(SmallBankConfig {
            accounts: 1024,
            cross_shard_fraction: 0.0,
            ..SmallBankConfig::default()
        })
        .executors(4, 64)
        .validators(2)
        .rounds(rounds)
        .lockstep()
        .label("Thunderbolt/tcp")
        .tune(|system| system.ce = system.ce.without_synthetic_cost())
        .build_real_net()
        .expect("fault-free smallbank scenario must be launchable");

    let options = LaunchOptions {
        node_deadline: Duration::from_secs(60),
        check_sim_digest: true,
    };
    let outcome = run_real_net_scenario(&plan, &options).expect("cluster launch failed");

    println!(
        "{} processes over localhost TCP, {} leader rounds requested",
        replicas, rounds
    );
    for report in &outcome.reports {
        println!(
            "  node {}: {} txs committed, {} rounds, {} msgs sent / {} delivered, \
             {} B sent, digest {:016x}",
            report.node,
            report.committed_txs,
            report.round_commits.len(),
            report.msgs_sent,
            report.msgs_delivered,
            report.bytes_sent,
            report.commit_digest
        );
    }
    println!(
        "  cross-node digest agreement: {}",
        if outcome.nodes_agree { "OK" } else { "FAILED" }
    );
    if let Some(sim) = &outcome.sim_report {
        println!(
            "  sim twin: {} txs committed, digest {} -> {}",
            sim.committed_txs,
            sim.commit_order_digest,
            if outcome.sim_digest_match {
                "matches node 0"
            } else {
                "MISMATCH"
            }
        );
    }
    if !outcome.nodes_agree || !outcome.sim_digest_match {
        std::process::exit(1);
    }
}
