//! One Thunderbolt replica as an OS process.
//!
//! Normally spawned by `tb-launcher` (or any binary using
//! `tb_launcher::run_real_net_scenario`) with the node spec hex-encoded in
//! `TB_NODE_SPEC`; run standalone it prints usage. See `docs/NET.md`.

fn main() {
    if tb_launcher::maybe_run_node_from_env() {
        return;
    }
    eprintln!(
        "thunderbolt-node runs one replica of an out-of-process cluster; it \
         expects a hex-encoded NodeSpec in ${} and is normally spawned by \
         tb-launcher. Try: cargo run --release --bin tb-launcher",
        tb_launcher::NODE_SPEC_ENV
    );
    std::process::exit(2);
}
