//! Non-blocking reconfiguration drill.
//!
//! A censoring shard proposer stops disseminating its blocks; the remaining
//! replicas detect the silence, emit Shift blocks, and — once 2f+1 Shift
//! blocks are committed — migrate to a new DAG with rotated shard
//! assignments, without ever pausing consensus (paper Section 6).
//!
//! Run with: `cargo run --release --example reconfiguration_drill`

use thunderbolt::prelude::*;

fn main() {
    let replicas = 4;
    let mut sim = ScenarioBuilder::new(replicas)
        .workload(SmallBankConfig::system_eval(replicas, 0.05))
        .executors(4, 100)
        .rounds(30)
        // React to 3 silent rounds; also rotate every 12 rounds regardless.
        .reconfig(ReconfigConfig::new(3, 12))
        // Replica 1 censors from the start: it receives traffic but never
        // disseminates its own blocks.
        .faults(FaultPlan::silence_from_start(ReplicaId::new(1)))
        .build();
    let report = sim.run();

    println!("{}", report.summary());
    println!(
        "reconfigurations completed: {} (observer finished in DAG {})",
        report.reconfigurations,
        sim.replica(ReplicaId::new(0)).current_dag()
    );
    println!(
        "replica 0 now serves shard {} (was shard 0 before the rotation)",
        sim.replica(ReplicaId::new(0)).current_shard()
    );
    for window in report.per_round_runtime(5) {
        println!(
            "rounds ..{:>3}: average commit-to-commit runtime {:.4}s",
            window.0, window.1
        );
    }
    assert!(
        report.reconfigurations >= 1,
        "the censored shard must trigger at least one reconfiguration"
    );
    println!(
        "\nconsensus never stalled: {} leader rounds committed",
        report.round_commits.len()
    );
}
