//! A full multi-replica Thunderbolt cluster processing SmallBank traffic on
//! a simulated LAN, compared against the Tusk baseline.
//!
//! Run with: `cargo run --release --example smallbank_cluster`

use tb_types::{CeConfig, LatencyModel};
use tb_workload::SmallBankConfig;
use thunderbolt::{ClusterConfig, ClusterSimulation, ExecutionMode};

fn run(mode: ExecutionMode, replicas: u32, rounds: u64) {
    let mut config = ClusterConfig::thunderbolt(replicas);
    config.mode = mode;
    config.system.ce = CeConfig::new(4, 200);
    config.system.validators = 4;
    config.system.max_rounds = rounds;
    config.system.latency = LatencyModel::lan();

    let workload = SmallBankConfig::system_eval(replicas, 0.0);
    let mut sim = ClusterSimulation::with_defaults(config, workload);
    let report = sim.run();
    println!("{}", report.summary());
}

fn main() {
    let replicas = 8;
    let rounds = 12;
    println!(
        "SmallBank on {replicas} replicas, {rounds} rounds of DAG consensus (simulated LAN)\n"
    );
    run(ExecutionMode::Thunderbolt, replicas, rounds);
    run(ExecutionMode::ThunderboltOcc, replicas, rounds);
    run(ExecutionMode::Tusk, replicas, rounds);
    println!("\nThunderbolt preplays single-shard transactions before consensus and");
    println!("validates them in parallel afterwards; Tusk executes everything serially");
    println!("after consensus, which is what the 50x headline speedup comes from.");
}
