//! A full multi-replica Thunderbolt cluster processing SmallBank traffic on
//! a simulated LAN, compared against the Tusk baseline.
//!
//! Run with: `cargo run --release --example smallbank_cluster`

use thunderbolt::prelude::*;

fn run(mode: ExecutionMode, replicas: u32, rounds: u64) {
    let report = ScenarioBuilder::new(replicas)
        .engine(mode)
        .workload(SmallBankConfig::system_eval(replicas, 0.0))
        .executors(4, 200)
        .validators(4)
        .rounds(rounds)
        .latency(LatencyModel::lan())
        .run();
    println!("{}", report.summary());
}

fn main() {
    let replicas = 8;
    let rounds = 12;
    println!(
        "SmallBank on {replicas} replicas, {rounds} rounds of DAG consensus (simulated LAN)\n"
    );
    run(ExecutionMode::Thunderbolt, replicas, rounds);
    run(ExecutionMode::ThunderboltOcc, replicas, rounds);
    run(ExecutionMode::Tusk, replicas, rounds);
    println!("\nThunderbolt preplays single-shard transactions before consensus and");
    println!("validates them in parallel afterwards; Tusk executes everything serially");
    println!("after consensus, which is what the 50x headline speedup comes from.");
}
