//! Cross-shard transactions and dynamic contracts.
//!
//! The example shows the two sides of Thunderbolt's hybrid execution model:
//! single-shard transactions are preplayed (EOV), cross-shard transactions
//! are ordered first and executed after consensus (OE). It also demonstrates
//! why preplay cannot rely on declared read/write sets by running
//! pointer-chasing interpreter contracts whose write set is only discovered
//! during execution.
//!
//! Run with: `cargo run --release --example cross_shard_contention`

use thunderbolt::prelude::*;

fn main() {
    // Part 1: a contract whose write set depends on runtime state.
    println!("-- dynamic access patterns --");
    let mut state = MapState::with_entries([
        (Key::contract(1), Value::int(7)),   // pointer slot -> slot 7
        (Key::contract(7), Value::int(100)), // target slot
    ]);
    let call = ContractCall::Program {
        code: ProgramBuilder::indirect_touch().into_bytes(),
        args: vec![1, 25],
        declared_keys: vec![Key::contract(1)],
    };
    let mut tracking = TrackingState::new(&mut state);
    execute_call(&call, &mut tracking).expect("contract runs");
    let (outcome, _) = tracking.finish();
    println!(
        "declared keys: {:?}",
        call.declared_keys()
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "actual write set discovered by preplay: {:?}",
        outcome
            .write_set
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
    );

    // Part 2: sweep the cross-shard ratio on a small cluster (a miniature
    // version of Figure 14).
    println!("\n-- cross-shard ratio sweep (8 replicas) --");
    for cross_percent in [0.0, 0.2, 0.6] {
        let report = ScenarioBuilder::new(8)
            .workload(SmallBankConfig::system_eval(8, cross_percent))
            .executors(4, 200)
            .rounds(10)
            .run();
        println!(
            "cross-shard {:>3.0}% -> {:>9.0} tps, avg latency {:.3}s ({} cross-shard committed)",
            cross_percent * 100.0,
            report.throughput_tps(),
            report.avg_latency_secs(),
            report.cross_shard_txs
        );
    }

    // Part 3: the same cluster under the interpreter-contract workload —
    // pointer-chasing programs from part 1 as live cluster traffic.
    println!("\n-- interpreter contracts as cluster traffic (4 replicas) --");
    let report = ScenarioBuilder::new(4)
        .workload(ContractWorkloadConfig::default())
        .executors(4, 200)
        .rounds(10)
        .run();
    println!("{}", report.summary());
}
