//! Plugging a custom workload into the cluster.
//!
//! The cluster harness only speaks the `Workload` trait, so a scenario the
//! paper never measured is ~50 lines away: implement the trait, hand the
//! generator to `ScenarioBuilder::workload`, and the whole stack — preplay,
//! DAG consensus, validation, commit, reporting — runs it unchanged. The
//! workload here is a "ping-pong" stress: every transaction moves a token
//! between the two ends of a fixed key pair, so consecutive blocks chain on
//! the same keys and the proposer's preplay overlay does real work.
//!
//! Run with: `cargo run --release --example custom_workload`

use thunderbolt::prelude::*;

/// A deterministic workload bouncing payments across a small set of
/// dedicated account pairs.
struct PingPong {
    pairs: u64,
    n_shards: u32,
    next_tx: u64,
}

impl PingPong {
    fn new(pairs: u64) -> Self {
        PingPong {
            pairs,
            n_shards: 1,
            next_tx: 0,
        }
    }

    /// Both accounts of pair `p`, chosen in the same shard (`p mod n`) so
    /// the transactions take the single-shard preplay path while the pairs
    /// themselves spread over every shard proposer.
    fn accounts(&self, pair: u64) -> (u64, u64) {
        let stride = u64::from(self.n_shards.max(1));
        let base = pair * stride * 2 + pair % stride;
        (base, base + stride)
    }
}

impl Workload for PingPong {
    fn name(&self) -> &str {
        "ping-pong"
    }

    fn n_shards(&self) -> u32 {
        self.n_shards
    }

    fn configure_for_cluster(&mut self, n_shards: u32, _cluster_seed: u64) {
        // This generator is a round-robin, not RNG-driven, so the cluster
        // seed has nothing to perturb; only the shard tagging changes.
        self.n_shards = n_shards;
        self.next_tx = 0;
    }

    fn initial_state(&self) -> Vec<(Key, Value)> {
        let mut entries = Vec::new();
        for pair in 0..self.pairs {
            let (a, b) = self.accounts(pair);
            for account in [a, b] {
                entries.push((Key::checking(account), Value::int(1_000)));
                entries.push((Key::savings(account), Value::int(1_000)));
            }
        }
        entries
    }

    fn next_transaction(&mut self, submitted_at: SimTime) -> Transaction {
        let id = self.next_tx;
        self.next_tx += 1;
        let (a, b) = self.accounts(id % self.pairs);
        // Even transactions ping a -> b, odd ones pong b -> a.
        let (from, to) = if (id / self.pairs).is_multiple_of(2) {
            (a, b)
        } else {
            (b, a)
        };
        Transaction::new(
            TxId::new(id),
            ClientId::new((id % 8) as u32),
            ContractCall::SmallBank(SmallBankProcedure::SendPayment {
                from,
                to,
                amount: 1,
            }),
            self.n_shards,
            submitted_at,
        )
    }
}

fn main() {
    let report = ScenarioBuilder::new(4)
        .workload(Box::new(PingPong::new(64)) as Box<dyn Workload>)
        .executors(2, 64)
        .rounds(10)
        .seed(7)
        .run();
    println!("{}", report.summary());
    println!(
        "single-shard (preplayed): {}, cross-shard: {}, invalid blocks: {}",
        report.single_shard_txs, report.cross_shard_txs, report.invalid_blocks
    );
    assert_eq!(report.workload, "ping-pong");
    assert!(report.committed_txs > 0, "the custom workload must commit");
    assert_eq!(
        report.invalid_blocks, 0,
        "honest preplay of a deterministic workload must validate"
    );
}
