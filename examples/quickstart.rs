//! Quickstart: preplay a SmallBank batch with the concurrent executor,
//! validate it like a remote replica would, and apply it to storage.
//!
//! This is the executor-level tour; see `smallbank_cluster` for the
//! scenario-level `ScenarioBuilder` entry point.
//!
//! Run with: `cargo run --release --example quickstart`

use thunderbolt::prelude::*;

fn main() {
    // 1. A store holding the SmallBank accounts.
    let store = MemStore::new();
    let workload_config = SmallBankConfig {
        accounts: 1_000,
        theta: 0.85,
        pr_read: 0.5,
        n_shards: 1,
        ..SmallBankConfig::default()
    };
    let mut workload = SmallBankWorkload::new(workload_config);
    store.load(workload.initial_state());
    println!(
        "loaded {} SmallBank accounts (total balance {})",
        workload_config.accounts,
        store.stats().int_sum
    );

    // 2. Preplay one batch with the concurrent executor (the EOV path a
    //    Thunderbolt shard proposer runs before consensus).
    let ce = ConcurrentExecutor::new(CeConfig::new(8, 500));
    let batch = workload.batch(500, SimTime::ZERO);
    let result = ce.preplay(&batch, &store);
    println!(
        "preplayed {} transactions in {:?} ({:.0} tps, {} re-executions, {} logical rejections)",
        result.committed(),
        result.elapsed,
        result.throughput_tps(),
        result.reexecutions,
        result.logical_rejections,
    );

    // 3. Validate the preplay results exactly like every other replica does
    //    after consensus (parallel re-execution against the declared
    //    read/write sets).
    let report = validate_block(&result.preplayed, &store, &ValidationConfig::new(8));
    println!(
        "validation: {} transactions checked, valid = {}",
        report.checked,
        report.is_valid()
    );
    assert!(report.is_valid());

    // 4. Apply the serialized write sets to storage.
    let before = store.get(&Key::checking(0));
    result.apply_to(&store);
    println!(
        "applied block to storage; checking/0 went from {before} to {}",
        store.get(&Key::checking(0))
    );
    println!(
        "total balance is conserved: {}",
        store.stats().int_sum == workload_config.accounts as i64 * 2 * 100_000
    );
}
