//! `thunderbolt` — the workspace façade for the Thunderbolt reproduction.
//!
//! This crate is the single import path through which the examples, the
//! integration tests at the repository root, and downstream users address
//! the whole system. The implementation lives in the member crates under
//! `crates/*`; this façade re-exports them and curates a [`prelude`] for
//! scenario-first usage:
//!
//! ```
//! use thunderbolt::prelude::*;
//!
//! let report = ScenarioBuilder::new(4)
//!     .engine(ExecutionMode::Thunderbolt)
//!     .workload(SmallBankConfig::system_eval(4, 0.1))
//!     .executors(2, 32)
//!     .rounds(8)
//!     .seed(7)
//!     .run();
//! assert!(report.committed_txs > 0);
//! assert_eq!(report.workload, "smallbank");
//! ```
//!
//! The member crates, re-exported whole for anything the prelude omits:
//!
//! * [`core`] (`tb-core`) — the protocol (replicas, cluster simulation,
//!   scenario builder, commit pipeline, reconfiguration),
//! * [`tb_executor`] — the concurrent executor and the OCC / 2PL / serial
//!   baselines,
//! * [`tb_dag`] — the Tusk-style DAG substrate,
//! * [`tb_network`] — the transport abstraction, the discrete-event
//!   network simulator and the real TCP transport,
//! * [`tb_workload`] — the [`Workload`](prelude::Workload) trait plus the
//!   SmallBank, contract and hot-key KV generators,
//! * [`tb_contracts`] — the contract runtime (SmallBank + interpreter),
//! * [`tb_storage`] — the store backends: the versioned in-memory store and
//!   the durable WAL + snapshot backend (see `docs/STORAGE.md`),
//! * [`tb_types`] — shared types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tb_contracts;
pub use tb_core as core;
pub use tb_dag;
pub use tb_executor;
pub use tb_network;
pub use tb_storage;
pub use tb_types;
pub use tb_workload;

// Protocol items at the crate root, so pre-prelude paths like
// `thunderbolt::ClusterSimulation` keep working.
pub use tb_core::{
    assert_honest_agreement, check_honest_agreement, ByzantineBehavior, CampaignProfile,
    CampaignScenario, ClusterConfig, ClusterSimulation, CommitOutput, CommitPipeline, Destination,
    ExecutionMode, Invariant, InvariantContext, LatencyHistogram, Message, Outbound,
    PostCommitExecution, RealNetPlan, Replica, RoundCommitSample, RunReport, ScenarioBuilder,
    ScenarioError, ScenarioResult, ShardProposer, TransportKind,
};

/// The curated single-import surface for writing scenarios.
///
/// `use thunderbolt::prelude::*` brings in everything a typical experiment,
/// example or integration test needs: the scenario builder and cluster
/// harness, the [`Workload`](tb_workload::Workload) trait with the three
/// bundled generators, the execution engines, the store, and the shared
/// types they all speak.
pub mod prelude {
    pub use tb_core::campaign::{
        assert_honest_agreement, check_honest_agreement, default_campaign, run_campaign,
        CampaignProfile, CampaignScenario, Invariant, InvariantContext, ScenarioResult,
    };
    pub use tb_core::cluster::{ClusterConfig, ClusterSimulation, ExecutionMode};
    pub use tb_core::metrics::{LatencyHistogram, RoundCommitSample, RunReport};
    pub use tb_core::proposer::ByzantineBehavior;
    pub use tb_core::replica::{Destination, Outbound, Replica};
    pub use tb_core::scenario::{RealNetPlan, ScenarioBuilder, ScenarioError, TransportKind};
    pub use tb_core::Message;

    pub use tb_workload::{
        initial_smallbank_state, ContractWorkload, ContractWorkloadConfig, KvWorkload,
        KvWorkloadConfig, SmallBankConfig, SmallBankWorkload, Workload, ZipfianGenerator,
    };

    pub use tb_executor::{
        strict_figures_enabled, validate_block, BatchExecutor, ConcurrentExecutor, OccExecutor,
        SerialExecutor, TwoPlNoWaitExecutor, ValidationConfig,
    };

    pub use tb_contracts::{
        execute_call, MapState, ProgramBuilder, TrackingState, SMALLBANK_DEFAULT_BALANCE,
    };

    pub use tb_network::{FaultAction, FaultPlan, TcpPeer, TcpTransport, Transport};
    pub use tb_storage::{
        CommitMarker, KvRead, KvWrite, MemStore, Store, TempDir, WalOptions, WalStore,
    };

    pub use tb_types::{
        CeConfig, ClientId, ContractCall, Key, KeySpace, LatencyModel, Operation, ReconfigConfig,
        ReplicaId, ShardId, SimTime, SmallBankProcedure, StorageBackend, StorageConfig,
        SystemConfig, Transaction, TxClass, TxId, Value,
    };
}
