//! Workspace façade for the Thunderbolt reproduction.
//!
//! This crate only re-exports the public API of the member crates so the
//! examples and integration tests at the repository root can use a single
//! import path. The actual implementation lives in `crates/*`:
//!
//! * [`thunderbolt`] — the protocol (replicas, cluster simulation, commit
//!   pipeline, reconfiguration),
//! * [`tb_executor`] — the concurrent executor and the OCC / 2PL / serial
//!   baselines,
//! * [`tb_dag`] — the Tusk-style DAG substrate,
//! * [`tb_network`] — the discrete-event network simulator,
//! * [`tb_workload`] — SmallBank and contract workload generation,
//! * [`tb_contracts`] — the contract runtime (SmallBank + interpreter),
//! * [`tb_storage`] — the versioned in-memory store,
//! * [`tb_types`] — shared types.

pub use tb_contracts;
pub use tb_dag;
pub use tb_executor;
pub use tb_network;
pub use tb_storage;
pub use tb_types;
pub use tb_workload;
pub use thunderbolt;
